// Command wfbench regenerates every table and figure from the paper's
// evaluation: Table I, Figures 2-4 (runtime) and 5-7 (cost), the Section
// III.C disk characteristics, and the ablation experiments from DESIGN.md.
//
// Usage:
//
//	wfbench             # everything
//	wfbench -fig 4      # one figure (2-7)
//	wfbench -table1     # Table I only
//	wfbench -disk       # Section III.C disk table
//	wfbench -ablation s3cache
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"

	"ec2wfsim/internal/harness"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (2-7); 0 = all")
	table1 := flag.Bool("table1", false, "regenerate Table I only")
	diskTable := flag.Bool("disk", false, "print the Section III.C disk table only")
	ablation := flag.String("ablation", "", "run one ablation: "+strings.Join(harness.AblationNames(), ", "))
	csvPath := flag.String("csv", "", "write the full experiment grid (all apps) as CSV to this path")
	flag.Parse()

	if err := run(*fig, *table1, *diskTable, *ablation, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "wfbench:", err)
		os.Exit(1)
	}
}

func run(fig int, table1, diskTable bool, ablation, csvPath string) error {
	switch {
	case csvPath != "":
		return writeGridCSV(csvPath)
	case table1:
		return printTableI()
	case diskTable:
		fmt.Print(harness.DiskBench().String())
		return nil
	case ablation != "":
		_, out, err := harness.Ablation(ablation)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	case fig != 0:
		return printFigure(fig, nil)
	}
	// Everything, in paper order.
	if err := printTableI(); err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(harness.DiskBench().String())
	for f := 2; f <= 4; f++ {
		fmt.Println()
		// Reuse the runtime grid for the matching cost figure.
		out, cells, err := harness.RuntimeFigure(f)
		if err != nil {
			return err
		}
		fmt.Print(out)
		fmt.Println()
		costOut, _, err := harness.CostFigure(f+3, cells)
		if err != nil {
			return err
		}
		fmt.Print(costOut)
	}
	for _, name := range harness.AblationNames() {
		fmt.Println()
		_, out, err := harness.Ablation(name)
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	return nil
}

// writeGridCSV dumps the full (application x storage x nodes) grid with
// makespans, costs and storage counters — the raw data behind every
// figure, ready for external plotting.
func writeGridCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	header := []string{"app", "storage", "nodes", "makespan_s", "cost_per_hour", "cost_per_second",
		"utilization", "network_bytes", "s3_gets", "s3_puts", "cache_hits", "cache_misses"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, app := range []string{"montage", "epigenome", "broadband"} {
		cells, err := harness.Grid(app, nil)
		if err != nil {
			return err
		}
		for _, c := range cells {
			r := c.Result
			row := []string{
				app, c.System, fmt.Sprint(c.Workers),
				fmt.Sprintf("%.1f", r.Makespan),
				fmt.Sprintf("%.2f", r.CostHour.Total()),
				fmt.Sprintf("%.4f", r.CostSecond.Total()),
				fmt.Sprintf("%.3f", r.Utilization),
				fmt.Sprintf("%.0f", r.Stats.NetworkBytes),
				fmt.Sprint(r.Stats.Gets), fmt.Sprint(r.Stats.Puts),
				fmt.Sprint(r.Stats.CacheHits), fmt.Sprint(r.Stats.CacheMisses),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	fmt.Printf("wrote experiment grid to %s\n", path)
	return nil
}

func printTableI() error {
	t, err := harness.TableI()
	if err != nil {
		return err
	}
	fmt.Print(t.String())
	return nil
}

func printFigure(fig int, cells []harness.Cell) error {
	if fig >= 2 && fig <= 4 {
		out, _, err := harness.RuntimeFigure(fig)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	if fig >= 5 && fig <= 7 {
		out, _, err := harness.CostFigure(fig, cells)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	return fmt.Errorf("figure %d not in the paper (want 2-7)", fig)
}
