// Command wfsim runs a single (application x storage x cluster-size)
// experiment from the paper and prints the makespan, cost and storage
// counters — optionally with a Gantt chart of the execution, or
// replicated across seeds for a mean/stddev confidence band.
//
// Usage:
//
//	wfsim -app montage -storage gluster-nufa -nodes 4
//	wfsim -app broadband -storage s3 -nodes 8 -gantt
//	wfsim -app epigenome -storage nfs -nodes 2 -data-aware
//	wfsim -app montage -storage nfs -nodes 4 -seeds 10 -parallel 4
//	wfsim -app broadband -storage s3 -nodes 4 -json
//	wfsim -app montage -storage pvfs -nodes 4 -failure-rate 0.1 -max-retries 5
//	wfsim -app montage -storage pvfs -nodes 4 -outage-rate 1 -checkpoint-interval 120
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/harness"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/trace"
	"ec2wfsim/internal/units"
)

func main() {
	app := flag.String("app", "montage", "application: "+strings.Join(apps.Names(), ", "))
	sysName := flag.String("storage", "gluster-nufa", "storage system: "+strings.Join(storage.Names(), ", "))
	nodes := flag.Int("nodes", 2, "number of c1.xlarge worker nodes")
	dataAware := flag.Bool("data-aware", false, "use the locality-aware scheduler (paper future work)")
	gantt := flag.Bool("gantt", false, "print a per-node Gantt chart")
	csvPath := flag.String("csv", "", "write the execution trace as CSV to this path")
	seed := flag.Uint64("seed", harness.DefaultSeed, "provisioning jitter seed")
	seeds := flag.Int("seeds", 1, "replicate the run across this many derived seeds and report mean/stddev")
	parallel := flag.Int("parallel", 0, "max concurrent replicates; 0 = all cores")
	jsonOut := flag.Bool("json", false, "print the result as JSON instead of text")
	failureRate := flag.Float64("failure-rate", 0, "inject transient task failures with this per-attempt probability (0 = paper's failure-free setting)")
	maxRetries := flag.Int("max-retries", 0, "failed attempts allowed per task; 0 = DAGMan's default of 3")
	failureSeed := flag.Uint64("failure-seed", 0, "failure-injection RNG seed; 0 = fixed default")
	outageRate := flag.Float64("outage-rate", 0, "inject correlated node outages at this rate per node-hour (0 = paper's outage-free setting)")
	outageDuration := flag.Float64("outage-duration", 0, "mean outage length in seconds; 0 = the default of 120")
	outageSeed := flag.Uint64("outage-seed", 0, "outage-schedule RNG seed; 0 = fixed default")
	checkpointInterval := flag.Float64("checkpoint-interval", 0, "write a checkpoint every this many seconds of computation and resume killed tasks from it (0 = no checkpointing)")
	flag.Parse()

	cfg := harness.RunConfig{
		App:                *app,
		Storage:            *sysName,
		Workers:            *nodes,
		DataAware:          *dataAware,
		Seed:               *seed,
		FailureRate:        *failureRate,
		MaxRetries:         *maxRetries,
		FailureSeed:        *failureSeed,
		OutageRate:         *outageRate,
		OutageDuration:     *outageDuration,
		OutageSeed:         *outageSeed,
		CheckpointInterval: *checkpointInterval,
	}
	if err := run(cfg, *seeds, *parallel, *gantt, *csvPath, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "wfsim:", err)
		os.Exit(1)
	}
}

func run(cfg harness.RunConfig, seeds, parallel int, gantt bool, csvPath string, jsonOut bool) error {
	if seeds > 1 {
		if gantt || csvPath != "" {
			return fmt.Errorf("-gantt and -csv trace a single execution; drop them or run without -seeds")
		}
		return runReplicated(cfg, seeds, parallel, jsonOut)
	}
	res, err := harness.Run(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res.JSONRow())
	}
	printResult(cfg, res)
	if gantt {
		tr := trace.New(res.Spans, res.Makespan)
		fmt.Println()
		fmt.Print(tr.Gantt(100))
		fmt.Println()
		fmt.Print(tr.Summary(cluster.C1XLarge().Cores))
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		tr := trace.New(res.Spans, res.Makespan)
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  trace CSV         %s (%d rows)\n", csvPath, len(res.Spans))
	}
	return nil
}

// runReplicated sweeps the same cell across derived seeds concurrently
// and reports the spread — the confidence band the paper's single
// measurements lack.
func runReplicated(cfg harness.RunConfig, seeds, parallel int, jsonOut bool) error {
	reps, err := harness.SweepSeeds([]harness.RunConfig{cfg},
		harness.SweepOptions{Seeds: seeds, Parallel: parallel})
	if err != nil {
		return err
	}
	rep := reps[0]
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep.JSONRow())
	}
	fmt.Printf("%s on %s, %d x c1.xlarge, %d seeds\n", cfg.App, cfg.Storage, cfg.Workers, seeds)
	fmt.Printf("  %-17s %.1f ± %.1f s  [%.1f, %.1f]\n", "makespan",
		rep.Makespan.Mean, rep.Makespan.Stddev, rep.Makespan.Min, rep.Makespan.Max)
	if cfg.FailureRate > 0 {
		fmt.Printf("  %-17s %.1f ± %.1f per run (rate %g)\n", "failures",
			rep.Failures.Mean, rep.Failures.Stddev, cfg.FailureRate)
	}
	if cfg.OutageRate > 0 {
		fmt.Printf("  %-17s %.1f ± %.1f per run (rate %g/node-h, %.0f ± %.0f s lost)\n", "outage kills",
			rep.OutageKills.Mean, rep.OutageKills.Stddev, cfg.OutageRate,
			rep.LostWork.Mean, rep.LostWork.Stddev)
	}
	fmt.Printf("  %-17s $%.2f ± $%.3f  [$%.2f, $%.2f]\n", "cost per-hour",
		rep.CostHour.Mean, rep.CostHour.Stddev, rep.CostHour.Min, rep.CostHour.Max)
	fmt.Printf("  %-17s $%.4f ± $%.5f\n", "cost per-second", rep.CostSecond.Mean, rep.CostSecond.Stddev)
	fmt.Printf("  %-17s %.1f%% ± %.2f%%\n", "utilization", rep.Utilization.Mean*100, rep.Utilization.Stddev*100)
	return nil
}

func printResult(cfg harness.RunConfig, res *harness.RunResult) {
	hour, sec := res.CostHour, res.CostSecond
	st := res.Stats
	fmt.Printf("%s on %s, %d x c1.xlarge", cfg.App, cfg.Storage, cfg.Workers)
	if extra := len(res.Cluster.Extra); extra > 0 {
		fmt.Printf(" + %d service node(s)", extra)
	}
	fmt.Println()
	fmt.Printf("  tasks             %d\n", res.Completed())
	if res.Failures > 0 {
		fmt.Printf("  failures          %d injected, %d retries (rate %g)\n",
			res.Failures, res.Retries, cfg.FailureRate)
	}
	if res.Outages > 0 {
		fmt.Printf("  outages           %d node outages, %d attempts killed (rate %g/node-h)\n",
			res.Outages, res.OutageKills, cfg.OutageRate)
	}
	if res.LostWorkSeconds > 0 {
		fmt.Printf("  lost work         %s of slot time\n", units.Duration(res.LostWorkSeconds))
	}
	if res.Checkpoints > 0 {
		fmt.Printf("  checkpoints       %d written (%s staged, every %gs of compute)\n",
			res.Checkpoints, units.Bytes(res.CheckpointBytes), cfg.CheckpointInterval)
	}
	fmt.Printf("  provisioning      %s (excluded from makespan)\n", units.Duration(res.ProvisionTime))
	fmt.Printf("  makespan          %s (%.0f s)\n", units.Duration(res.Makespan), res.Makespan)
	fmt.Printf("  utilization       %.0f%%\n", res.Utilization*100)
	fmt.Printf("  cost per-hour     %s  (%.1f node-hours)\n", units.USD(hour.Total()), hour.NodeHours)
	fmt.Printf("  cost per-second   %s\n", units.USD(sec.Total()))
	fmt.Printf("  network traffic   %s\n", units.Bytes(st.NetworkBytes))
	if st.Gets+st.Puts > 0 {
		fmt.Printf("  S3 requests       %d GET, %d PUT (%s fees)\n",
			st.Gets, st.Puts, units.USD(hour.RequestCost))
	}
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Printf("  client cache      %d hits / %d misses\n", st.CacheHits, st.CacheMisses)
	}
}
