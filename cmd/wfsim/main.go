// Command wfsim runs a single (application x storage x cluster-size)
// experiment from the paper and prints the makespan, cost and storage
// counters — optionally with a Gantt chart of the execution.
//
// Usage:
//
//	wfsim -app montage -storage gluster-nufa -nodes 4
//	wfsim -app broadband -storage s3 -nodes 8 -gantt
//	wfsim -app epigenome -storage nfs -nodes 2 -data-aware
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ec2wfsim/internal/apps"
	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/cost"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/rng"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/trace"
	"ec2wfsim/internal/units"
	"ec2wfsim/internal/wms"
)

func main() {
	app := flag.String("app", "montage", "application: "+strings.Join(apps.Names(), ", "))
	sysName := flag.String("storage", "gluster-nufa", "storage system: "+strings.Join(storage.Names(), ", "))
	nodes := flag.Int("nodes", 2, "number of c1.xlarge worker nodes")
	dataAware := flag.Bool("data-aware", false, "use the locality-aware scheduler (paper future work)")
	gantt := flag.Bool("gantt", false, "print a per-node Gantt chart")
	csvPath := flag.String("csv", "", "write the execution trace as CSV to this path")
	seed := flag.Uint64("seed", 0x5EED, "provisioning jitter seed")
	flag.Parse()

	if err := run(*app, *sysName, *nodes, *dataAware, *gantt, *csvPath, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "wfsim:", err)
		os.Exit(1)
	}
}

func run(app, sysName string, nodes int, dataAware, gantt bool, csvPath string, seed uint64) error {
	w, err := apps.PaperScale(app)
	if err != nil {
		return err
	}
	sys, err := storage.ByName(sysName)
	if err != nil {
		return err
	}
	e := sim.NewEngine()
	net := flow.NewNet(e)
	c, err := cluster.New(e, net, rng.New(seed), cluster.Config{
		Workers:    nodes,
		WorkerType: cluster.C1XLarge(),
		Extra:      sys.ExtraNodeTypes(),
	})
	if err != nil {
		return err
	}
	env := &storage.Env{E: e, Net: net, Workers: c.Workers, Extra: c.Extra, R: rng.New(seed + 1)}
	if err := sys.Init(env); err != nil {
		return err
	}
	res, err := wms.Run(e, wms.Options{Cluster: c, Storage: sys, DataAware: dataAware}, w)
	if err != nil {
		return err
	}
	st := sys.Stats()
	hour := cost.Compute(c, res.Makespan, st, cost.PerHour)
	sec := cost.Compute(c, res.Makespan, st, cost.PerSecond)

	fmt.Printf("%s on %s, %d x c1.xlarge", app, sysName, nodes)
	if len(c.Extra) > 0 {
		fmt.Printf(" + %d service node(s)", len(c.Extra))
	}
	fmt.Println()
	fmt.Printf("  tasks             %d\n", len(res.Spans))
	fmt.Printf("  provisioning      %s (excluded from makespan)\n", units.Duration(c.ProvisionTime))
	fmt.Printf("  makespan          %s (%.0f s)\n", units.Duration(res.Makespan), res.Makespan)
	fmt.Printf("  utilization       %.0f%%\n", res.Utilization(c)*100)
	fmt.Printf("  cost per-hour     %s  (%.1f node-hours)\n", units.USD(hour.Total()), hour.NodeHours)
	fmt.Printf("  cost per-second   %s\n", units.USD(sec.Total()))
	fmt.Printf("  network traffic   %s\n", units.Bytes(st.NetworkBytes))
	if st.Gets+st.Puts > 0 {
		fmt.Printf("  S3 requests       %d GET, %d PUT (%s fees)\n",
			st.Gets, st.Puts, units.USD(hour.RequestCost))
	}
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Printf("  client cache      %d hits / %d misses\n", st.CacheHits, st.CacheMisses)
	}
	if gantt {
		tr := trace.New(res.Spans, res.Makespan)
		fmt.Println()
		fmt.Print(tr.Gantt(100))
		fmt.Println()
		fmt.Print(tr.Summary(cluster.C1XLarge().Cores))
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		tr := trace.New(res.Spans, res.Makespan)
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  trace CSV         %s (%d rows)\n", csvPath, len(res.Spans))
	}
	return nil
}
