// Command wfsim runs a single (application x storage x cluster-size)
// experiment from the paper and prints the makespan, cost and storage
// counters — optionally with a Gantt chart of the execution, or
// replicated across seeds for a mean/stddev confidence band.
//
// Every scenario flag is registered from the shared option table
// (internal/scenario), so wfsim and wfbench stay in automatic parity;
// -emit-spec serializes the configured run as a JSON experiment spec
// and -spec runs one back.
//
// Usage:
//
//	wfsim -app montage -storage gluster-nufa -nodes 4
//	wfsim -app broadband -storage s3 -nodes 8 -gantt
//	wfsim -app epigenome -storage nfs -nodes 2 -data-aware
//	wfsim -app montage -storage nfs -nodes 4 -seeds 10 -parallel 4
//	wfsim -app broadband -storage s3 -nodes 4 -json
//	wfsim -app montage -storage pvfs -nodes 4 -failure-rate 0.1 -max-retries 5
//	wfsim -app montage -storage pvfs -nodes 4 -outage-rate 1 -checkpoint-interval 120
//	wfsim -app montage -storage nfs -nodes 2 -worker-type m1.large
//	wfsim -app montage -storage pvfs -nodes 4 -flow-version 2
//	wfsim -app montage -storage nfs -nodes 2 -emit-spec run.json
//	wfsim -spec run.json -json
//	wfsim -app montage -storage nfs -nodes 2 -events run.wfevt
//	wfsim -app montage -storage nfs -nodes 4 -seeds 32 -cache-dir ~/.cache/wf  # replicates cached across runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/harness"
	"ec2wfsim/internal/resultcache"
	"ec2wfsim/internal/scenario"
	"ec2wfsim/internal/trace"
	"ec2wfsim/internal/units"
)

func main() {
	// Scenario flags come from the shared option table; the defaults are
	// the paper's mid-scale GlusterFS cell.
	spec := scenario.Spec{App: "montage", Storage: "gluster-nufa", Workers: 2}
	scenario.RegisterFlags(flag.CommandLine, &spec, true)

	gantt := flag.Bool("gantt", false, "print a per-node Gantt chart")
	csvPath := flag.String("csv", "", "write the execution trace as CSV to this path")
	eventsPath := flag.String("events", "", "record the run's structured event log (.wfevt) to this path; replay it with wfreplay")
	seeds := flag.Int("seeds", 1, "replicate the run across this many derived seeds and report mean/stddev")
	parallel := flag.Int("parallel", 0, "max concurrent replicates; 0 = all cores")
	cacheDir := flag.String("cache-dir", "", "persistent result cache directory shared across runs (metric outputs only; -gantt/-csv/-events always simulate)")
	jsonOut := flag.Bool("json", false, "print the result as JSON instead of text")
	specPath := flag.String("spec", "", "run the single-cell experiment spec in this JSON file (grids: wfbench -spec)")
	emitSpec := flag.String("emit-spec", "", "write the configured run as a JSON experiment spec to this path (\"-\" = stdout) and exit")
	flag.Parse()

	if err := run(&spec, *specPath, *emitSpec, *cacheDir, *seeds, *parallel, *gantt, *csvPath, *eventsPath, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "wfsim:", err)
		os.Exit(1)
	}
}

func run(spec *scenario.Spec, specPath, emitSpec, cacheDir string, seeds, parallel int, gantt bool, csvPath, eventsPath string, jsonOut bool) error {
	var store *resultcache.Store
	if cacheDir != "" {
		var err error
		store, err = resultcache.Open(cacheDir)
		if err != nil {
			return err
		}
		defer func() {
			hits, misses := store.Stats()
			fmt.Fprintf(os.Stderr, "wfsim: result cache %s: %d hit(s), %d miss(es)\n", cacheDir, hits, misses)
		}()
	}
	if specPath != "" {
		// The file is the whole scenario; scenario flags (and -seeds,
		// which the spec carries) would silently fight it.
		conflicting := append(scenario.FlagNames(true), "seeds")
		if set := setFlags(conflicting); len(set) > 0 {
			return fmt.Errorf("-spec carries the whole scenario; drop %s", strings.Join(set, ", "))
		}
		e, err := scenario.ReadFile(specPath)
		if err != nil {
			return err
		}
		cells, err := e.Cells()
		if err != nil {
			return err
		}
		if len(cells) != 1 {
			return fmt.Errorf("%s expands to %d cells; wfsim runs one (use wfbench -spec for grids)", specPath, len(cells))
		}
		*spec = cells[0]
		if e.Seeds > 1 {
			seeds = e.Seeds
		}
	}
	if emitSpec != "" {
		return writeSpec(*spec, seeds, emitSpec)
	}
	cfg := harness.SpecConfig(*spec)
	if seeds > 1 {
		if gantt || csvPath != "" || eventsPath != "" {
			return fmt.Errorf("-gantt, -csv and -events trace a single execution; drop them or run without -seeds")
		}
		return runReplicated(cfg, store, seeds, parallel, jsonOut)
	}
	var res *harness.RunResult
	var err error
	if store != nil && jsonOut && eventsPath == "" {
		// The JSON row is pure metrics, so a cached single cell serves
		// it without simulating; trace modes below always simulate.
		var rs []*harness.RunResult
		rs, err = harness.Sweep([]harness.RunConfig{cfg},
			harness.SweepOptions{Parallel: 1, Cache: store})
		if err != nil {
			return err
		}
		res = rs[0]
	} else if eventsPath != "" {
		var f *os.File
		f, err = os.Create(eventsPath)
		if err != nil {
			return err
		}
		res, err = harness.RunRecorded(cfg, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	} else {
		res, err = harness.Run(cfg)
	}
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res.JSONRow())
	}
	printResult(cfg, res)
	if gantt {
		tr := trace.New(res.Spans, res.Makespan)
		fmt.Println()
		fmt.Print(tr.Gantt(100))
		fmt.Println()
		fmt.Print(tr.Summary(cluster.C1XLarge().Cores))
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		tr := trace.New(res.Spans, res.Makespan)
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  trace CSV         %s (%d rows)\n", csvPath, len(res.Spans))
	}
	if eventsPath != "" {
		fmt.Printf("  event log         %s (check with: wfreplay verify %s)\n", eventsPath, eventsPath)
	}
	return nil
}

// setFlags returns the names (dash-prefixed) of the given flags that
// were explicitly set on the command line.
func setFlags(names []string) []string {
	watched := make(map[string]bool, len(names))
	for _, n := range names {
		watched[n] = true
	}
	var set []string
	flag.Visit(func(f *flag.Flag) {
		if watched[f.Name] {
			set = append(set, "-"+f.Name)
		}
	})
	return set
}

// writeSpec serializes the configured run as an experiment spec — the
// round-trip counterpart of -spec, and the input of wfbench -spec.
func writeSpec(spec scenario.Spec, seeds int, path string) error {
	e := scenario.Experiment{Base: spec}
	if seeds > 1 {
		e.Seeds = seeds
	}
	if _, err := e.Cells(); err != nil {
		return err // reject unknown names before they land in a file
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := e.Write(out); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("wrote experiment spec to %s\n", path)
	}
	return nil
}

// workerLabel names the worker instance type of a run.
func workerLabel(cfg harness.RunConfig) string {
	if cfg.WorkerType != "" {
		return cfg.WorkerType
	}
	return "c1.xlarge"
}

// runReplicated sweeps the same cell across derived seeds concurrently
// and reports the spread — the confidence band the paper's single
// measurements lack.
func runReplicated(cfg harness.RunConfig, store *resultcache.Store, seeds, parallel int, jsonOut bool) error {
	reps, err := harness.SweepSeeds([]harness.RunConfig{cfg},
		harness.SweepOptions{Seeds: seeds, Parallel: parallel, Cache: store})
	if err != nil {
		return err
	}
	rep := reps[0]
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep.JSONRow())
	}
	fmt.Printf("%s on %s, %d x %s, %d seeds\n", cfg.App, cfg.Storage, cfg.Workers, workerLabel(cfg), seeds)
	fmt.Printf("  %-17s %.1f ± %.1f s  [%.1f, %.1f]\n", "makespan",
		rep.Makespan.Mean, rep.Makespan.Stddev, rep.Makespan.Min, rep.Makespan.Max)
	if cfg.FailureRate > 0 {
		fmt.Printf("  %-17s %.1f ± %.1f per run (rate %g)\n", "failures",
			rep.Failures.Mean, rep.Failures.Stddev, cfg.FailureRate)
	}
	if cfg.OutageRate > 0 {
		fmt.Printf("  %-17s %.1f ± %.1f per run (rate %g/node-h, %.0f ± %.0f s lost)\n", "outage kills",
			rep.OutageKills.Mean, rep.OutageKills.Stddev, cfg.OutageRate,
			rep.LostWork.Mean, rep.LostWork.Stddev)
	}
	fmt.Printf("  %-17s $%.2f ± $%.3f  [$%.2f, $%.2f]\n", "cost per-hour",
		rep.CostHour.Mean, rep.CostHour.Stddev, rep.CostHour.Min, rep.CostHour.Max)
	fmt.Printf("  %-17s $%.4f ± $%.5f\n", "cost per-second", rep.CostSecond.Mean, rep.CostSecond.Stddev)
	fmt.Printf("  %-17s %.1f%% ± %.2f%%\n", "utilization", rep.Utilization.Mean*100, rep.Utilization.Stddev*100)
	return nil
}

func printResult(cfg harness.RunConfig, res *harness.RunResult) {
	hour, sec := res.CostHour, res.CostSecond
	st := res.Stats
	fmt.Printf("%s on %s, %d x %s", cfg.App, cfg.Storage, cfg.Workers, workerLabel(cfg))
	if extra := len(res.Cluster.Extra); extra > 0 {
		fmt.Printf(" + %d service node(s)", extra)
	}
	fmt.Println()
	fmt.Printf("  tasks             %d\n", res.Completed())
	if res.Failures > 0 {
		fmt.Printf("  failures          %d injected, %d retries (rate %g)\n",
			res.Failures, res.Retries, cfg.FailureRate)
	}
	if res.Outages > 0 {
		fmt.Printf("  outages           %d node outages, %d attempts killed (rate %g/node-h)\n",
			res.Outages, res.OutageKills, cfg.OutageRate)
	}
	if res.LostWorkSeconds > 0 {
		fmt.Printf("  lost work         %s of slot time\n", units.Duration(res.LostWorkSeconds))
	}
	if res.Checkpoints > 0 {
		fmt.Printf("  checkpoints       %d written (%s staged, every %gs of compute)\n",
			res.Checkpoints, units.Bytes(res.CheckpointBytes), cfg.CheckpointInterval)
	}
	fmt.Printf("  provisioning      %s (excluded from makespan)\n", units.Duration(res.ProvisionTime))
	fmt.Printf("  makespan          %s (%.0f s)\n", units.Duration(res.Makespan), res.Makespan)
	fmt.Printf("  utilization       %.0f%%\n", res.Utilization*100)
	fmt.Printf("  cost per-hour     %s  (%.1f node-hours)\n", units.USD(hour.Total()), hour.NodeHours)
	fmt.Printf("  cost per-second   %s\n", units.USD(sec.Total()))
	fmt.Printf("  network traffic   %s\n", units.Bytes(st.NetworkBytes))
	if st.Gets+st.Puts > 0 {
		fmt.Printf("  S3 requests       %d GET, %d PUT (%s fees)\n",
			st.Gets, st.Puts, units.USD(hour.RequestCost))
	}
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Printf("  client cache      %d hits / %d misses\n", st.CacheHits, st.CacheMisses)
	}
}
