// Command diskbench reproduces the paper's Section III.C ephemeral-disk
// measurements: the severe first-write penalty, its mitigation with
// software RAID0, and the economics of zero-initialization (42 minutes to
// zero 50 GB on one disk — "almost as long as running the workflow").
//
// Usage:
//
//	diskbench          # measured-rate table + timed transfer experiments
//	diskbench -init    # the zero-initialization economics experiment (A-6)
package main

import (
	"flag"
	"fmt"
	"os"

	"ec2wfsim/internal/disk"
	"ec2wfsim/internal/flow"
	"ec2wfsim/internal/harness"
	"ec2wfsim/internal/report"
	"ec2wfsim/internal/sim"
	"ec2wfsim/internal/units"
)

func main() {
	initEcon := flag.Bool("init", false, "run the zero-initialization economics ablation")
	flag.Parse()
	if err := run(*initEcon); err != nil {
		fmt.Fprintln(os.Stderr, "diskbench:", err)
		os.Exit(1)
	}
}

func run(initEcon bool) error {
	if initEcon {
		_, out, err := harness.Ablation("diskinit")
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	fmt.Print(harness.DiskBench().String())
	fmt.Println()

	// Timed transfers through the simulated volumes, mirroring the dd-style
	// measurements behind the paper's numbers.
	t := &report.Table{
		Title:  "Timed 8 GB transfers (simulated)",
		Header: []string{"Volume", "Operation", "Time", "Effective rate"},
	}
	volumes := []struct {
		name    string
		profile disk.Profile
	}{
		{"1 ephemeral disk", disk.EphemeralSingle()},
		{"RAID0 x 4", disk.RAID0(disk.EphemeralSingle(), 4)},
	}
	const size = 8 * units.GB
	for _, v := range volumes {
		for _, op := range []string{"first write", "rewrite", "read"} {
			e := sim.NewEngine()
			net := flow.NewNet(e)
			d := disk.New(net, "bench", v.profile)
			var took float64
			e.Go("io", func(p *sim.Proc) {
				switch op {
				case "first write":
					d.Write(p, size)
				case "rewrite":
					d.MarkInitialized()
					d.Write(p, size)
				case "read":
					d.Read(p, size)
				}
				took = p.Now()
			})
			e.Run()
			t.AddRow(v.name, op, units.Duration(took), units.Rate(size/took))
		}
	}
	fmt.Print(t.String())

	// The paper's headline: zeroing 50 GB takes ~42 minutes.
	e := sim.NewEngine()
	net := flow.NewNet(e)
	d := disk.New(net, "init", disk.EphemeralSingle())
	var took float64
	e.Go("zero", func(p *sim.Proc) {
		d.ZeroInitialize(p, 50*units.GB)
		took = p.Now()
	})
	e.Run()
	fmt.Printf("\nZero-initializing 50 GB on one ephemeral disk: %s (paper: ~42 minutes)\n",
		units.Duration(took))
	return nil
}
