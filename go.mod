module ec2wfsim

go 1.24
