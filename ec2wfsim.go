// Package ec2wfsim reproduces "Data Sharing Options for Scientific
// Workflows on Amazon EC2" (Juve et al., SC 2010) as a calibrated
// discrete-event simulation: EC2 virtual clusters, the paper's five
// data-sharing systems (Amazon S3 with a client cache, NFS, GlusterFS in
// NUFA and distribute modes, PVFS) plus the local-disk baseline and
// XtreemFS, a Pegasus/DAGMan/Condor-style workflow engine, the three
// evaluated applications (Montage, Broadband, Epigenome), and the 2010
// EC2/S3 cost model.
//
// The facade wraps the internal packages into a three-line experiment.
// A Config names the cell; functional options compose scenario knobs on
// top of it:
//
//	res, err := ec2wfsim.Run(
//	    ec2wfsim.Config{Application: "montage", Storage: "gluster-nufa", Workers: 4},
//	    ec2wfsim.WithFailures(0.1, 5),
//	    ec2wfsim.WithOutages(1, 120),
//	    ec2wfsim.WithCheckpointing(120),
//	)
//	fmt.Println(res.MakespanSeconds, res.CostPerHour)
//
// Whole experiment matrices are one Experiment value: a base cell, grid
// axes crossed over it, and an optional replicate count. Sweep streams
// results through a callback while the grid is still running and stops
// on context cancellation; an Experiment also round-trips through JSON
// (MarshalSpec/ParseSpec), so the same matrix can run from a file via
// `wfbench -spec`.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-simulation comparison of every table and figure.
package ec2wfsim

import (
	"bytes"
	"context"
	"errors"

	"ec2wfsim/internal/cluster"
	"ec2wfsim/internal/harness"
	"ec2wfsim/internal/scenario"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/sweep"
	"ec2wfsim/internal/workflow"
)

// Config selects one deployment to simulate. It names the cell —
// application (or custom workflow), storage system, cluster size — plus
// the most common knobs. Everything else (worker instance types,
// failure injection, correlated outages, checkpointing, seed control)
// composes on top via functional options; the flat knob fields below
// beyond that core are kept as a thin deprecated shim for existing
// callers and fold into the same scenario spec the options mutate.
type Config struct {
	// Application is "montage", "broadband" or "epigenome" (the paper's
	// three workloads, generated at paper scale), unless Workflow is set.
	Application string
	// Workflow overrides Application with a custom DAG.
	Workflow *workflow.Workflow
	// Storage is one of Systems(): "local", "nfs", "nfs-m2.4xlarge",
	// "nfs-sync", "gluster-nufa", "gluster-dist", "pvfs", "s3",
	// "s3-nocache" or "xtreemfs".
	Storage string
	// Workers is the worker-node count (the paper sweeps 1, 2, 4, 8 x
	// c1.xlarge; see WithWorkerType for other instance types).
	Workers int
	// DataAware enables the locality-aware scheduler (the paper's
	// future-work suggestion) instead of Condor's locality-blind FIFO.
	DataAware bool
	// Seed varies provisioning jitter; zero uses a fixed default, keeping
	// runs bit-for-bit reproducible.
	Seed uint64
	// FailureRate injects i.i.d. transient task failures with this
	// per-attempt probability; zero (the paper's setting) disables them.
	//
	// Deprecated: prefer WithFailures, which also exposes the retry
	// bound.
	FailureRate float64
	// OutageRate injects correlated node outages at this expected rate
	// per node per hour: whole nodes drop offline, their in-flight tasks
	// are killed and retried, and data they own is unreadable until
	// recovery. Zero disables outages.
	//
	// Deprecated: prefer WithOutages.
	OutageRate float64
	// OutageDuration is the mean outage length in seconds (0 = default).
	//
	// Deprecated: prefer WithOutages.
	OutageDuration float64
	// CheckpointInterval makes tasks checkpoint every interval seconds of
	// computation (real storage traffic) and resume killed attempts from
	// the last checkpoint. Zero disables checkpointing.
	//
	// Deprecated: prefer WithCheckpointing.
	CheckpointInterval float64
}

// Option composes one scenario knob on top of a base Config. Options
// are self-describing all the way down: each knob an option sets is
// automatically part of the memoization key, replicated with paired
// seeds under SweepSeeds, registered as a CLI flag on wfbench/wfsim,
// and serialized in experiment specs.
type Option struct {
	apply func(*scenario.Spec)
}

// WithFailures injects i.i.d. transient task failures with the given
// per-attempt probability, bounding re-executions at maxRetries per
// task (0 = DAGMan's RETRY default of 3).
func WithFailures(rate float64, maxRetries int) Option {
	return Option{func(s *scenario.Spec) {
		s.FailureRate = rate
		s.MaxRetries = maxRetries
	}}
}

// WithFailureSeed drives the failure-injection RNG independently of the
// provisioning seed (0 = a fixed default). Ignored without WithFailures.
func WithFailureSeed(seed uint64) Option {
	return Option{func(s *scenario.Spec) { s.FailureSeed = seed }}
}

// WithOutages injects correlated node outages at the given expected
// rate per node per hour, each lasting meanDurationSeconds on average
// (0 = the 120 s default). A down node idles its task slots, kills
// in-flight attempts, loses its RAM caches and makes data it owns
// unreadable until recovery.
func WithOutages(ratePerNodeHour, meanDurationSeconds float64) Option {
	return Option{func(s *scenario.Spec) {
		s.OutageRate = ratePerNodeHour
		s.OutageDuration = meanDurationSeconds
	}}
}

// WithOutageSeed drives the outage schedule independently of the other
// seeds (0 = a fixed default). Ignored without WithOutages.
func WithOutageSeed(seed uint64) Option {
	return Option{func(s *scenario.Spec) { s.OutageSeed = seed }}
}

// WithCheckpointing makes tasks write a checkpoint every
// intervalSeconds of computation — sized by their peak memory and
// staged through the storage backend as real traffic — and killed
// attempts resume from the last checkpoint instead of from zero.
func WithCheckpointing(intervalSeconds float64) Option {
	return Option{func(s *scenario.Spec) { s.CheckpointInterval = intervalSeconds }}
}

// WithWorkerType selects the worker instance type by EC2 name
// (WorkerTypes lists the catalog; empty means the paper's c1.xlarge).
func WithWorkerType(name string) Option {
	return Option{func(s *scenario.Spec) { s.WorkerType = name }}
}

// WithDataAware enables the locality-aware scheduler.
func WithDataAware() Option {
	return Option{func(s *scenario.Spec) { s.DataAware = true }}
}

// WithSeed sets the provisioning-jitter seed (0 = the fixed default).
func WithSeed(seed uint64) Option {
	return Option{func(s *scenario.Spec) { s.Seed = seed }}
}

// WithAppSeed varies the generated application's task-runtime jitter
// (0 = the fixed paper seed). Ignored for custom Workflows.
func WithAppSeed(seed uint64) Option {
	return Option{func(s *scenario.Spec) { s.AppSeed = seed }}
}

// WithInitializedDisks zero-fills the given bytes of ephemeral disk
// before the run (the paper's A-6 first-write ablation).
func WithInitializedDisks(bytes float64) Option {
	return Option{func(s *scenario.Spec) {
		s.InitializeDisks = true
		s.InitializeBytes = bytes
	}}
}

// runConfig translates the facade config plus options for the harness.
func (cfg Config) runConfig(opts ...Option) harness.RunConfig {
	rc := harness.RunConfig{
		App:                cfg.Application,
		Workflow:           cfg.Workflow,
		Storage:            cfg.Storage,
		Workers:            cfg.Workers,
		DataAware:          cfg.DataAware,
		Seed:               cfg.Seed,
		FailureRate:        cfg.FailureRate,
		OutageRate:         cfg.OutageRate,
		OutageDuration:     cfg.OutageDuration,
		CheckpointInterval: cfg.CheckpointInterval,
	}
	if len(opts) > 0 {
		spec := rc.Spec()
		for _, o := range opts {
			o.apply(&spec)
		}
		w := rc.Workflow
		rc = harness.SpecConfig(spec)
		rc.Workflow = w
	}
	return rc
}

// Result reports one simulated workflow execution.
type Result struct {
	// MakespanSeconds is the workflow wall-clock time (excluding
	// provisioning and data staging, per the paper's methodology).
	MakespanSeconds float64
	// ProvisionSeconds is the boot+contextualization time, reported
	// separately.
	ProvisionSeconds float64
	// CostPerHour is the dollars Amazon would actually charge (hours
	// rounded up, service nodes and S3 request fees included).
	CostPerHour float64
	// CostPerSecond is the hypothetical fine-grained bill the paper uses
	// for comparison.
	CostPerSecond float64
	// Utilization is mean worker-core busy fraction.
	Utilization float64
	// Storage carries the storage system's counters (S3 GET/PUT counts,
	// cache hits, network bytes, ...).
	Storage storage.Stats
	// Failures counts injected i.i.d. task failures; Retries counts all
	// re-executions (injected failures plus outage kills). Outages and
	// OutageKills count node outages and the attempts they killed;
	// LostWorkSeconds is slot time failed attempts burned beyond any
	// checkpointed progress; Checkpoints and CheckpointBytes count
	// checkpoint writes and the bytes they staged.
	Failures        int64
	Retries         int64
	Outages         int64
	OutageKills     int64
	LostWorkSeconds float64
	Checkpoints     int64
	CheckpointBytes float64
}

func newResult(r *harness.RunResult) *Result {
	return &Result{
		MakespanSeconds:  r.Makespan,
		ProvisionSeconds: r.ProvisionTime,
		CostPerHour:      r.CostHour.Total(),
		CostPerSecond:    r.CostSecond.Total(),
		Utilization:      r.Utilization,
		Storage:          r.Stats,
		Failures:         r.Failures,
		Retries:          r.Retries,
		Outages:          r.Outages,
		OutageKills:      r.OutageKills,
		LostWorkSeconds:  r.LostWorkSeconds,
		Checkpoints:      r.Checkpoints,
		CheckpointBytes:  r.CheckpointBytes,
	}
}

// Run simulates one deployment: the base cell named by cfg with any
// scenario options composed on top. Unknown application, storage or
// worker-type names fail with an error listing the valid names.
func Run(cfg Config, opts ...Option) (*Result, error) {
	r, err := harness.Run(cfg.runConfig(opts...))
	if err != nil {
		return nil, err
	}
	return newResult(r), nil
}

// AmortizedCost compares provisioning one cluster for k successive runs
// of the configured workflow against k separately provisioned runs — the
// paper's Section VI strategy for absorbing per-hour billing waste.
type AmortizedCost struct {
	Runs           int
	SeparateTotal  float64 // k independent provisioning cycles
	SharedTotal    float64 // one cluster, k workflows back to back
	PerSecondTotal float64 // granularity-free baseline (same either way)
	SavedFraction  float64 // 1 - Shared/Separate
}

// Amortize runs the configuration once and prices k successive runs.
func Amortize(cfg Config, runs int, opts ...Option) (*AmortizedCost, error) {
	r, err := harness.Run(cfg.runConfig(opts...))
	if err != nil {
		return nil, err
	}
	a := r.Amortize(runs)
	return &AmortizedCost{
		Runs:           a.Runs,
		SeparateTotal:  a.SeparateTotal,
		SharedTotal:    a.SharedTotal,
		PerSecondTotal: a.PerSecondTotal,
		SavedFraction:  a.Savings(),
	}, nil
}

// Axis varies one scenario field across values in an Experiment grid.
// Field is the spec's JSON field name (AxisFields lists them); Vary and
// the typed helpers construct axes without spelling values as `any`.
type Axis struct {
	Field  string
	Values []any
}

// Vary builds an axis over any scenario field by its JSON name, e.g.
// Vary("checkpoint_interval", 0.0, 60.0, 300.0).
func Vary(field string, values ...any) Axis {
	return Axis{Field: field, Values: values}
}

// VaryWorkers sweeps the cluster size — including sizes beyond the
// paper's 8 nodes.
func VaryWorkers(counts ...int) Axis { return vary("workers", counts) }

// VaryStorage sweeps storage systems (Systems lists the valid names).
func VaryStorage(names ...string) Axis { return vary("storage", names) }

// VaryApplications sweeps the paper's applications.
func VaryApplications(names ...string) Axis { return vary("app", names) }

// VaryWorkerTypes sweeps worker instance types (WorkerTypes lists the
// catalog).
func VaryWorkerTypes(names ...string) Axis { return vary("worker_type", names) }

// VaryFailureRates sweeps the injected per-attempt failure probability.
func VaryFailureRates(rates ...float64) Axis { return vary("failure_rate", rates) }

// VaryOutageRates sweeps the correlated-outage rate (per node-hour).
func VaryOutageRates(rates ...float64) Axis { return vary("outage_rate", rates) }

func vary[T any](field string, values []T) Axis {
	out := make([]any, len(values))
	for i, v := range values {
		out[i] = v
	}
	return Axis{Field: field, Values: out}
}

// AxisFields lists every sweepable scenario field name.
func AxisFields() []string { return scenario.AxisFields() }

// Experiment is a whole experiment matrix: a base cell (with options
// composed on top), grid axes crossed over it in declaration order
// (the last axis varies fastest), and an optional replicate count used
// by SweepSeeds. An Experiment without a custom Workflow serializes to
// a JSON spec (MarshalSpec) runnable via `wfbench -spec`.
type Experiment struct {
	Base    Config
	Options []Option
	Axes    []Axis
	// Seeds is SweepSeeds' replicate count per cell (<= 1 means single
	// measurement). Replicate 0 always keeps the cell's own seeds, so
	// paper numbers lead every replication study.
	Seeds int
}

// scenarioExperiment lowers the facade experiment onto the scenario
// layer; the Workflow (if any) rides alongside, not in the spec.
func (e Experiment) scenarioExperiment() scenario.Experiment {
	axes := make([]scenario.Axis, len(e.Axes))
	for i, ax := range e.Axes {
		axes[i] = scenario.Axis{Field: ax.Field, Values: ax.Values}
	}
	return scenario.Experiment{
		Base:  e.Base.runConfig(e.Options...).Spec(),
		Axes:  axes,
		Seeds: e.Seeds,
	}
}

// cells expands the experiment grid into harness configurations.
func (e Experiment) cells() ([]harness.RunConfig, error) {
	specs, err := e.scenarioExperiment().Cells()
	if err != nil {
		return nil, err
	}
	cfgs := make([]harness.RunConfig, len(specs))
	for i, s := range specs {
		cfgs[i] = harness.SpecConfig(s)
		// A custom workflow is shared read-only across cells (the DAG is
		// immutable during execution; all run state lives in wms).
		cfgs[i].Workflow = e.Base.Workflow
	}
	return cfgs, nil
}

// MarshalSpec serializes the experiment as an indented JSON spec —
// the file format of `wfbench -spec` and `wfsim -spec`.
func (e Experiment) MarshalSpec() ([]byte, error) {
	if e.Base.Workflow != nil {
		return nil, errors.New("ec2wfsim: experiments with a custom Workflow are not serializable")
	}
	if _, err := e.cells(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := e.scenarioExperiment().Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseSpec parses a JSON experiment spec (either a full experiment or
// a bare single-cell spec) into an Experiment.
func ParseSpec(data []byte) (Experiment, error) {
	se, err := scenario.Read(bytes.NewReader(data))
	if err != nil {
		return Experiment{}, err
	}
	base := se.Base
	axes := make([]Axis, len(se.Axes))
	for i, ax := range se.Axes {
		axes[i] = Axis{Field: ax.Field, Values: ax.Values}
	}
	return Experiment{
		// Config-representable fields land in Base (so callers can read
		// and override them after parsing); only the fields the flat
		// Config cannot hold ride in as an option.
		Base: Config{
			Application:        base.App,
			Storage:            base.Storage,
			Workers:            base.Workers,
			DataAware:          base.DataAware,
			Seed:               base.Seed,
			FailureRate:        base.FailureRate,
			OutageRate:         base.OutageRate,
			OutageDuration:     base.OutageDuration,
			CheckpointInterval: base.CheckpointInterval,
		},
		Options: []Option{{func(s *scenario.Spec) {
			s.WorkerType = base.WorkerType
			s.AppSeed = base.AppSeed
			s.InitializeDisks = base.InitializeDisks
			s.InitializeBytes = base.InitializeBytes
			s.MaxRetries = base.MaxRetries
			s.FailureSeed = base.FailureSeed
			s.OutageSeed = base.OutageSeed
		}}},
		Axes:  axes,
		Seeds: se.Seeds,
	}, nil
}

// SweepUpdate reports one completed cell (or replicate) to a streaming
// callback, in completion order.
type SweepUpdate struct {
	Index int // position in the expanded grid (replicates flattened)
	Done  int // cells completed so far, including this one
	Total int // cells in the sweep
	// Application, Storage and Workers identify the completed cell's
	// headline axes; Key is its full canonical scenario encoding (every
	// knob, normalized), which distinguishes cells in sweeps over other
	// axes — failure rates, worker types, outage rates. Key is empty
	// for custom-Workflow cells (a DAG has no canonical name).
	Application string
	Storage     string
	Workers     int
	Key         string
	Result      *Result // nil when Err != nil
	Err         error
	Cached      bool // served from the process-wide memo without running
}

// SweepOptions configure Sweep and SweepSeeds.
type SweepOptions struct {
	// Parallel bounds concurrent cells; <= 0 means all cores.
	Parallel int
	// OnResult, if set, streams every completed cell in completion
	// order while the sweep is still running — partial figures before
	// the grid finishes. Calls are serialized.
	OnResult func(SweepUpdate)
}

func (o SweepOptions) harness(ctx context.Context) harness.SweepOptions {
	hopt := harness.SweepOptions{Parallel: o.Parallel, Ctx: ctx}
	if o.OnResult != nil {
		cb := o.OnResult
		hopt.Progress = func(u sweep.Update[harness.RunConfig, *harness.RunResult]) {
			su := SweepUpdate{
				Index: u.Index, Done: u.Done, Total: u.Total,
				Application: u.Config.App, Storage: u.Config.Storage, Workers: u.Config.Workers,
				Err: u.Err, Cached: u.Cached,
			}
			if u.Config.Workflow == nil {
				spec := u.Config.Spec()
				su.Key = scenario.Key(&spec)
			}
			if u.Err == nil && u.Result != nil {
				su.Result = newResult(u.Result)
			}
			cb(su)
		}
	}
	return hopt
}

// Sweep runs an experiment grid concurrently and returns results in
// grid order, bit-for-bit identical at any parallelism. Completed
// cells stream through opt.OnResult while the sweep runs; canceling
// ctx stops the sweep promptly (no new cell starts) and returns the
// context's error. A nil ctx never cancels. Experiment.Seeds is
// ignored here — use SweepSeeds for replication.
func Sweep(ctx context.Context, e Experiment, opt SweepOptions) ([]*Result, error) {
	cfgs, err := e.cells()
	if err != nil {
		return nil, err
	}
	rs, err := harness.Sweep(cfgs, opt.harness(ctx))
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(rs))
	for i, r := range rs {
		out[i] = newResult(r)
	}
	return out, nil
}

// Summary aggregates one metric over replicate runs (sample stddev; 0
// when N < 2).
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

func newSummary(s sweep.Summary) Summary {
	return Summary{N: s.N, Mean: s.Mean, Stddev: s.Stddev, Min: s.Min, Max: s.Max}
}

// Replicated aggregates one cell's multi-seed replicates — the
// confidence band the paper's single measurements lack. Replicate 0
// reproduces the paper's numbers.
type Replicated struct {
	// Application, Storage and Workers identify the cell.
	Application string
	Storage     string
	Workers     int
	// Runs are the individual replicates, in replicate order.
	Runs []*Result
	// Headline metric spreads over the replicates.
	Makespan      Summary
	CostPerHour   Summary
	CostPerSecond Summary
	Utilization   Summary
	// Failure/outage/checkpoint counter spreads; all zero for cells
	// without those options.
	Failures        Summary
	Retries         Summary
	OutageKills     Summary
	LostWorkSeconds Summary
	CheckpointBytes Summary
}

// SweepSeeds runs every cell of the experiment grid Experiment.Seeds
// times with deterministic per-cell seed derivation and aggregates per
// cell. Replicates of a cell with failure or outage options share
// their jitter seeds with the same replicate of the option-free
// baseline cell, so overhead comparisons are paired. Streaming and
// cancellation work as in Sweep, with one OnResult call per replicate.
func SweepSeeds(ctx context.Context, e Experiment, opt SweepOptions) ([]Replicated, error) {
	cfgs, err := e.cells()
	if err != nil {
		return nil, err
	}
	hopt := opt.harness(ctx)
	hopt.Seeds = e.Seeds
	reps, err := harness.SweepSeeds(cfgs, hopt)
	if err != nil {
		return nil, err
	}
	out := make([]Replicated, len(reps))
	for i, rep := range reps {
		runs := make([]*Result, len(rep.Runs))
		for j, r := range rep.Runs {
			runs[j] = newResult(r)
		}
		out[i] = Replicated{
			Application:     rep.Config.App,
			Storage:         rep.Config.Storage,
			Workers:         rep.Config.Workers,
			Runs:            runs,
			Makespan:        newSummary(rep.Makespan),
			CostPerHour:     newSummary(rep.CostHour),
			CostPerSecond:   newSummary(rep.CostSecond),
			Utilization:     newSummary(rep.Utilization),
			Failures:        newSummary(rep.Failures),
			Retries:         newSummary(rep.Retries),
			OutageKills:     newSummary(rep.OutageKills),
			LostWorkSeconds: newSummary(rep.LostWork),
			CheckpointBytes: newSummary(rep.CheckpointBytes),
		}
	}
	return out, nil
}

// Systems lists the available storage system names.
func Systems() []string { return storage.Names() }

// Applications lists the paper's workloads.
func Applications() []string { return []string{"montage", "broadband", "epigenome"} }

// WorkerTypes lists the worker instance-type catalog.
func WorkerTypes() []string { return cluster.TypeNames() }
