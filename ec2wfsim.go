// Package ec2wfsim reproduces "Data Sharing Options for Scientific
// Workflows on Amazon EC2" (Juve et al., SC 2010) as a calibrated
// discrete-event simulation: EC2 virtual clusters, the paper's five
// data-sharing systems (Amazon S3 with a client cache, NFS, GlusterFS in
// NUFA and distribute modes, PVFS) plus the local-disk baseline and
// XtreemFS, a Pegasus/DAGMan/Condor-style workflow engine, the three
// evaluated applications (Montage, Broadband, Epigenome), and the 2010
// EC2/S3 cost model.
//
// The facade wraps the internal packages into a three-line experiment:
//
//	res, err := ec2wfsim.Run(ec2wfsim.Config{
//	    Application: "montage", Storage: "gluster-nufa", Workers: 4,
//	})
//	fmt.Println(res.Makespan, res.CostPerHour)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-simulation comparison of every table and figure.
package ec2wfsim

import (
	"ec2wfsim/internal/harness"
	"ec2wfsim/internal/storage"
	"ec2wfsim/internal/workflow"
)

// Config selects one deployment to simulate.
type Config struct {
	// Application is "montage", "broadband" or "epigenome" (the paper's
	// three workloads, generated at paper scale), unless Workflow is set.
	Application string
	// Workflow overrides Application with a custom DAG.
	Workflow *workflow.Workflow
	// Storage is one of Systems(): "local", "nfs", "nfs-m2.4xlarge",
	// "nfs-sync", "gluster-nufa", "gluster-dist", "pvfs", "s3",
	// "s3-nocache" or "xtreemfs".
	Storage string
	// Workers is the c1.xlarge worker count (the paper sweeps 1, 2, 4, 8).
	Workers int
	// DataAware enables the locality-aware scheduler (the paper's
	// future-work suggestion) instead of Condor's locality-blind FIFO.
	DataAware bool
	// Seed varies provisioning jitter; zero uses a fixed default, keeping
	// runs bit-for-bit reproducible.
	Seed uint64
	// FailureRate injects i.i.d. transient task failures with this
	// per-attempt probability; zero (the paper's setting) disables them.
	FailureRate float64
	// OutageRate injects correlated node outages at this expected rate
	// per node per hour: whole nodes drop offline, their in-flight tasks
	// are killed and retried, and data they own is unreadable until
	// recovery. Zero disables outages.
	OutageRate float64
	// OutageDuration is the mean outage length in seconds (0 = default).
	OutageDuration float64
	// CheckpointInterval makes tasks checkpoint every interval seconds of
	// computation (real storage traffic) and resume killed attempts from
	// the last checkpoint. Zero disables checkpointing.
	CheckpointInterval float64
}

// runConfig translates the facade config for the harness.
func (cfg Config) runConfig() harness.RunConfig {
	return harness.RunConfig{
		App:                cfg.Application,
		Workflow:           cfg.Workflow,
		Storage:            cfg.Storage,
		Workers:            cfg.Workers,
		DataAware:          cfg.DataAware,
		Seed:               cfg.Seed,
		FailureRate:        cfg.FailureRate,
		OutageRate:         cfg.OutageRate,
		OutageDuration:     cfg.OutageDuration,
		CheckpointInterval: cfg.CheckpointInterval,
	}
}

// Result reports one simulated workflow execution.
type Result struct {
	// MakespanSeconds is the workflow wall-clock time (excluding
	// provisioning and data staging, per the paper's methodology).
	MakespanSeconds float64
	// ProvisionSeconds is the boot+contextualization time, reported
	// separately.
	ProvisionSeconds float64
	// CostPerHour is the dollars Amazon would actually charge (hours
	// rounded up, service nodes and S3 request fees included).
	CostPerHour float64
	// CostPerSecond is the hypothetical fine-grained bill the paper uses
	// for comparison.
	CostPerSecond float64
	// Utilization is mean worker-core busy fraction.
	Utilization float64
	// Storage carries the storage system's counters (S3 GET/PUT counts,
	// cache hits, network bytes, ...).
	Storage storage.Stats
	// Failures counts injected i.i.d. task failures; Outages and
	// OutageKills count node outages and the attempts they killed;
	// LostWorkSeconds is slot time failed attempts burned beyond any
	// checkpointed progress; Checkpoints counts checkpoint writes.
	Failures        int64
	Outages         int64
	OutageKills     int64
	LostWorkSeconds float64
	Checkpoints     int64
}

// Run simulates one deployment.
func Run(cfg Config) (*Result, error) {
	r, err := harness.Run(cfg.runConfig())
	if err != nil {
		return nil, err
	}
	return &Result{
		MakespanSeconds:  r.Makespan,
		ProvisionSeconds: r.ProvisionTime,
		CostPerHour:      r.CostHour.Total(),
		CostPerSecond:    r.CostSecond.Total(),
		Utilization:      r.Utilization,
		Storage:          r.Stats,
		Failures:         r.Failures,
		Outages:          r.Outages,
		OutageKills:      r.OutageKills,
		LostWorkSeconds:  r.LostWorkSeconds,
		Checkpoints:      r.Checkpoints,
	}, nil
}

// AmortizedCost compares provisioning one cluster for k successive runs
// of the configured workflow against k separately provisioned runs — the
// paper's Section VI strategy for absorbing per-hour billing waste.
type AmortizedCost struct {
	Runs           int
	SeparateTotal  float64 // k independent provisioning cycles
	SharedTotal    float64 // one cluster, k workflows back to back
	PerSecondTotal float64 // granularity-free baseline (same either way)
	SavedFraction  float64 // 1 - Shared/Separate
}

// Amortize runs the configuration once and prices k successive runs.
func Amortize(cfg Config, runs int) (*AmortizedCost, error) {
	r, err := harness.Run(cfg.runConfig())
	if err != nil {
		return nil, err
	}
	a := r.Amortize(runs)
	return &AmortizedCost{
		Runs:           a.Runs,
		SeparateTotal:  a.SeparateTotal,
		SharedTotal:    a.SharedTotal,
		PerSecondTotal: a.PerSecondTotal,
		SavedFraction:  a.Savings(),
	}, nil
}

// Systems lists the available storage system names.
func Systems() []string { return storage.Names() }

// Applications lists the paper's workloads.
func Applications() []string { return []string{"montage", "broadband", "epigenome"} }
