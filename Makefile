# Developer entry points; CI runs the same commands (see
# .github/workflows/ci.yml).

WFVET := /tmp/wfvet

.PHONY: build test lint fmt rules

build:
	go build ./...

test:
	go test ./...

# Determinism lint: gofmt diff check, standard vet, then the wfvet
# analyzer suite through both drivers — the go vet protocol (per-package
# facts) and the standalone whole-program mode, baseline-enforced (only
# findings absent from .wfvet-baseline.json fail; stale entries fail
# too). Exit 2 on findings, 1 on usage errors.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	go vet ./...
	go build -o $(WFVET) ./cmd/wfvet
	go vet -vettool=$(WFVET) ./...
	$(WFVET) -baseline .wfvet-baseline.json ./...

fmt:
	gofmt -w .

rules:
	go run ./cmd/wfvet -catalog
