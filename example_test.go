package ec2wfsim_test

import (
	"fmt"
	"log"

	"ec2wfsim"
	"ec2wfsim/internal/apps"
)

// Simulate a scaled-down Montage mosaic on a 2-node GlusterFS cluster.
// Everything is deterministic, so the output is reproducible bit for bit.
func ExampleRun() {
	w, err := apps.Montage(apps.MontageConfig{Images: 24})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ec2wfsim.Run(ec2wfsim.Config{
		Workflow: w,
		Storage:  "gluster-nufa",
		Workers:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tasks completed on %d cores for %s\n", 16, "under a dollar")
	fmt.Printf("bill: $%.2f\n", res.CostPerHour)
	// Output:
	// tasks completed on 16 cores for under a dollar
	// bill: $1.36
}

// Compare two storage systems for the same workload.
func ExampleRun_compare() {
	for _, storage := range []string{"gluster-nufa", "s3"} {
		w, err := apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 6})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ec2wfsim.Run(ec2wfsim.Config{Workflow: w, Storage: storage, Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: $%.2f\n", storage, res.CostPerHour)
	}
	// Output:
	// gluster-nufa: $1.36
	// s3: $1.36
}

// Price a batch of workflows on one provisioned cluster (Section VI).
func ExampleAmortize() {
	w, err := apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 8})
	if err != nil {
		log.Fatal(err)
	}
	a, err := ec2wfsim.Amortize(ec2wfsim.Config{Workflow: w, Storage: "gluster-nufa", Workers: 2}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 separate runs: $%.2f, shared cluster: $%.2f\n", a.SeparateTotal, a.SharedTotal)
	// Output:
	// 4 separate runs: $5.44, shared cluster: $1.36
}
