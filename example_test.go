package ec2wfsim_test

import (
	"context"
	"fmt"
	"log"

	"ec2wfsim"
	"ec2wfsim/internal/apps"
)

// Simulate a scaled-down Montage mosaic on a 2-node GlusterFS cluster.
// Everything is deterministic, so the output is reproducible bit for bit.
func ExampleRun() {
	w, err := apps.Montage(apps.MontageConfig{Images: 24})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ec2wfsim.Run(ec2wfsim.Config{
		Workflow: w,
		Storage:  "gluster-nufa",
		Workers:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tasks completed on %d cores for %s\n", 16, "under a dollar")
	fmt.Printf("bill: $%.2f\n", res.CostPerHour)
	// Output:
	// tasks completed on 16 cores for under a dollar
	// bill: $1.36
}

// Compare two storage systems for the same workload.
func ExampleRun_compare() {
	for _, storage := range []string{"gluster-nufa", "s3"} {
		w, err := apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 6})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ec2wfsim.Run(ec2wfsim.Config{Workflow: w, Storage: storage, Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: $%.2f\n", storage, res.CostPerHour)
	}
	// Output:
	// gluster-nufa: $1.36
	// s3: $1.36
}

// Compose scenario knobs on top of a base cell with functional options:
// injected task failures with a retry bound, and checkpoint/restart so
// retries resume instead of starting over. Each option automatically
// participates in memoization, paired replicate seeding, CLI flags and
// spec serialization.
func ExampleRun_options() {
	w, err := apps.Montage(apps.MontageConfig{Images: 24})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ec2wfsim.Run(
		ec2wfsim.Config{Workflow: w, Storage: "gluster-nufa", Workers: 2},
		ec2wfsim.WithFailures(0.1, 5),
		ec2wfsim.WithCheckpointing(60),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failures injected: %d (retried %d)\n", res.Failures, res.Retries)
	fmt.Printf("checkpoints: %d\n", res.Checkpoints)
	// Output:
	// failures injected: 14 (retried 14)
	// checkpoints: 6
}

// Sweep a whole experiment grid — storage systems crossed with cluster
// sizes — with results streaming through a callback while the grid is
// still running. Results come back in grid order (the last axis varies
// fastest), bit-identical at any parallelism.
func ExampleSweep() {
	w, err := apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 6})
	if err != nil {
		log.Fatal(err)
	}
	e := ec2wfsim.Experiment{
		Base: ec2wfsim.Config{Workflow: w, Storage: "nfs", Workers: 2},
		Axes: []ec2wfsim.Axis{
			ec2wfsim.VaryStorage("nfs", "s3"),
			ec2wfsim.VaryWorkers(2, 4),
		},
	}
	results, err := ec2wfsim.Sweep(context.Background(), e, ec2wfsim.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	i := 0
	for _, storage := range []string{"nfs", "s3"} {
		for _, nodes := range []int{2, 4} {
			fmt.Printf("%s n=%d: $%.2f\n", storage, nodes, results[i].CostPerHour)
			i++
		}
	}
	// Output:
	// nfs n=2: $2.04
	// nfs n=4: $3.40
	// s3 n=2: $1.36
	// s3 n=4: $2.72
}

// Price a batch of workflows on one provisioned cluster (Section VI).
func ExampleAmortize() {
	w, err := apps.Epigenome(apps.EpigenomeConfig{Lanes: 1, ChunksPerLane: 8})
	if err != nil {
		log.Fatal(err)
	}
	a, err := ec2wfsim.Amortize(ec2wfsim.Config{Workflow: w, Storage: "gluster-nufa", Workers: 2}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 separate runs: $%.2f, shared cluster: $%.2f\n", a.SeparateTotal, a.SharedTotal)
	// Output:
	// 4 separate runs: $5.44, shared cluster: $1.36
}
