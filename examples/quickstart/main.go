// Quickstart: simulate the paper's headline configuration — the Montage
// astronomy workflow on a 4-node EC2 virtual cluster backed by GlusterFS —
// and print what it costs.
package main

import (
	"fmt"
	"log"

	"ec2wfsim"
)

func main() {
	res, err := ec2wfsim.Run(ec2wfsim.Config{
		Application: "montage",
		Storage:     "gluster-nufa",
		Workers:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Montage (10,429 tasks) on 4 x c1.xlarge with GlusterFS NUFA\n")
	fmt.Printf("  makespan:        %.0f s (%.1f min)\n", res.MakespanSeconds, res.MakespanSeconds/60)
	fmt.Printf("  provisioning:    %.0f s (excluded from makespan, as in the paper)\n", res.ProvisionSeconds)
	fmt.Printf("  core util:       %.0f%%\n", res.Utilization*100)
	fmt.Printf("  Amazon bill:     $%.2f (per-hour billing)\n", res.CostPerHour)
	fmt.Printf("  per-second bill: $%.2f (the paper's hypothetical)\n", res.CostPerSecond)
}
