// Quickstart: simulate the paper's headline configuration — the Montage
// astronomy workflow on a 4-node EC2 virtual cluster backed by GlusterFS —
// print what it costs, then compose a harsher scenario on top of the same
// cell with functional options: injected task failures, correlated node
// outages and checkpoint/restart.
package main

import (
	"fmt"
	"log"

	"ec2wfsim"
)

func main() {
	base := ec2wfsim.Config{
		Application: "montage",
		Storage:     "gluster-nufa",
		Workers:     4,
	}
	res, err := ec2wfsim.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Montage (10,429 tasks) on 4 x c1.xlarge with GlusterFS NUFA\n")
	fmt.Printf("  makespan:        %.0f s (%.1f min)\n", res.MakespanSeconds, res.MakespanSeconds/60)
	fmt.Printf("  provisioning:    %.0f s (excluded from makespan, as in the paper)\n", res.ProvisionSeconds)
	fmt.Printf("  core util:       %.0f%%\n", res.Utilization*100)
	fmt.Printf("  Amazon bill:     $%.2f (per-hour billing)\n", res.CostPerHour)
	fmt.Printf("  per-second bill: $%.2f (the paper's hypothetical)\n", res.CostPerSecond)

	// Same cell, harsher weather: 5% of task attempts fail, nodes drop
	// offline about once per node-hour for ~2 minutes, and tasks
	// checkpoint every 5 minutes of computation so retries resume
	// instead of starting over. Each option folds into the memoization
	// key, the replicate seeding and the serializable spec automatically.
	harsh, err := ec2wfsim.Run(base,
		ec2wfsim.WithFailures(0.05, 5),
		ec2wfsim.WithOutages(1, 120),
		ec2wfsim.WithCheckpointing(300),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSame cell with failures, outages and checkpointing\n")
	fmt.Printf("  makespan:        %.0f s (%+.0f%% vs clean)\n", harsh.MakespanSeconds,
		(harsh.MakespanSeconds/res.MakespanSeconds-1)*100)
	fmt.Printf("  failures:        %d injected, %d retries total\n", harsh.Failures, harsh.Retries)
	fmt.Printf("  outages:         %d (killed %d attempts, %.0f s of work lost)\n",
		harsh.Outages, harsh.OutageKills, harsh.LostWorkSeconds)
	fmt.Printf("  checkpoints:     %d written (%.0f MB staged)\n", harsh.Checkpoints, harsh.CheckpointBytes/1e6)
	fmt.Printf("  Amazon bill:     $%.2f\n", harsh.CostPerHour)
}
