// Seismology study: the paper's most surprising result, reproduced as an
// application. Broadband — memory-limited and input-reuse-heavy — behaves
// unlike the other workflows: the object store (S3 with a client cache)
// beats every POSIX file system, and NFS gets *slower* when the cluster
// grows from 2 to 4 nodes. This example also runs the paper's big-server
// ablation (m2.4xlarge vs m1.xlarge NFS server, Section V.C).
package main

import (
	"fmt"
	"log"

	"ec2wfsim"
)

func run(storage string, nodes int) *ec2wfsim.Result {
	res, err := ec2wfsim.Run(ec2wfsim.Config{
		Application: "broadband",
		Storage:     storage,
		Workers:     nodes,
	})
	if err != nil {
		log.Fatalf("broadband on %s with %d nodes: %v", storage, nodes, err)
	}
	return res
}

func main() {
	fmt.Println("Broadband (6 sources x 8 sites, 768 tasks) on EC2")
	fmt.Println()

	// The storage comparison at 4 nodes — the case the paper quantifies.
	fmt.Println("Storage comparison at 4 nodes (paper: NFS 5363 s; GlusterFS and S3 < 3000 s):")
	for _, storage := range []string{"s3", "gluster-nufa", "gluster-dist", "pvfs", "nfs"} {
		res := run(storage, 4)
		fmt.Printf("  %-14s %6.0f s   $%.2f/hr   cache hits %d\n",
			storage, res.MakespanSeconds, res.CostPerHour, res.Storage.CacheHits)
	}

	// The NFS scaling anomaly.
	fmt.Println()
	fmt.Println("NFS scaling (paper: performance *decreases* from 2 to 4 nodes):")
	prev := 0.0
	for _, nodes := range []int{1, 2, 4, 8} {
		res := run("nfs", nodes)
		marker := ""
		if prev > 0 && res.MakespanSeconds > prev {
			marker = "   <-- slower with more nodes (incast collapse)"
		}
		fmt.Printf("  %d nodes: %6.0f s%s\n", nodes, res.MakespanSeconds, marker)
		prev = res.MakespanSeconds
	}

	// The big-server ablation.
	fmt.Println()
	small := run("nfs", 4)
	big := run("nfs-m2.4xlarge", 4)
	fmt.Printf("NFS server upgrade at 4 nodes (paper: 5363 s -> 4368 s):\n")
	fmt.Printf("  m1.xlarge server:  %6.0f s  $%.2f/hr\n", small.MakespanSeconds, small.CostPerHour)
	fmt.Printf("  m2.4xlarge server: %6.0f s  $%.2f/hr  (faster, but pricier and still behind S3/GlusterFS)\n",
		big.MakespanSeconds, big.CostPerHour)

	// Why S3 wins: the write-once client cache absorbs Broadband's
	// repeated reads of the velocity models.
	fmt.Println()
	s3 := run("s3", 4)
	fmt.Printf("S3 client cache at 4 nodes: %d hits, %d GETs for %d reads — the paper's explanation for S3's win\n",
		s3.Storage.CacheHits, s3.Storage.Gets, s3.Storage.Reads)
}
