// Cost planner: operationalizes the paper's Section VI advice. Given an
// application and a deadline, it picks the cheapest deployment that meets
// the deadline ("provision the minimum number of nodes that will provide
// the desired performance"), and quantifies the paper's amortization
// advice — "provision a single virtual cluster and use it to run multiple
// workflows in succession" — by comparing k workflows on one cluster
// against k separately provisioned runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"ec2wfsim"
)

func main() {
	app := flag.String("app", "epigenome", "application to plan for")
	deadline := flag.Float64("deadline", 2400, "deadline in seconds")
	batch := flag.Int("batch", 5, "workflows per provisioned cluster for the amortization analysis")
	flag.Parse()

	type option struct {
		storage string
		nodes   int
		res     *ec2wfsim.Result
	}
	var options []option
	for _, storage := range []string{"local", "s3", "nfs", "gluster-nufa", "gluster-dist", "pvfs"} {
		for _, nodes := range []int{1, 2, 4, 8} {
			res, err := ec2wfsim.Run(ec2wfsim.Config{Application: *app, Storage: storage, Workers: nodes})
			if err != nil {
				continue
			}
			options = append(options, option{storage, nodes, res})
		}
	}
	if len(options) == 0 {
		log.Fatal("no deployment option ran")
	}

	fmt.Printf("Deployment plan for %s with a %.0f s deadline\n\n", *app, *deadline)
	best := -1
	for i, o := range options {
		meets := o.res.MakespanSeconds <= *deadline
		mark := " "
		if meets {
			mark = "*"
			if best < 0 || o.res.CostPerHour < options[best].res.CostPerHour-1e-9 ||
				(math.Abs(o.res.CostPerHour-options[best].res.CostPerHour) < 1e-9 &&
					o.res.MakespanSeconds < options[best].res.MakespanSeconds) {
				best = i
			}
		}
		fmt.Printf(" %s %-14s n=%d  %7.0f s  $%.2f/hr\n",
			mark, o.storage, o.nodes, o.res.MakespanSeconds, o.res.CostPerHour)
	}
	fmt.Println()
	if best < 0 {
		fmt.Println("no deployment meets the deadline; relax it or accept the fastest option")
		return
	}
	pick := options[best]
	fmt.Printf("recommendation: %s on %d node(s) — $%.2f, %.0f s\n\n",
		pick.storage, pick.nodes, pick.res.CostPerHour, pick.res.MakespanSeconds)

	// Amortization: k workflows back to back on one provisioned cluster.
	// Per-hour billing rounds the *total* occupancy up once, instead of
	// rounding every workflow up separately.
	am, err := ec2wfsim.Amortize(ec2wfsim.Config{
		Application: *app, Storage: pick.storage, Workers: pick.nodes,
	}, *batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("amortization over %d successive workflows on one cluster:\n", am.Runs)
	fmt.Printf("  %d separately provisioned runs: $%.2f\n", am.Runs, am.SeparateTotal)
	fmt.Printf("  one cluster, %d runs in a row:  $%.2f (%.0f%% saved — the paper's Section VI advice)\n",
		am.Runs, am.SharedTotal, am.SavedFraction*100)
	fmt.Printf("  per-second billing baseline:    $%.2f (granularity is the entire effect)\n",
		am.PerSecondTotal)
}
