// Mosaic study: the paper's Figure 2 experiment as an application — run
// the Montage astronomy workflow over every data-sharing option and
// cluster size through the public streaming Sweep, and report which
// deployment builds the 8-degree mosaic fastest and which builds it
// cheapest. Cells stream to stderr as they finish (partial results
// while the grid is still running); the final table is in grid order.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ec2wfsim"
)

type cell struct {
	storage string
	nodes   int
	res     *ec2wfsim.Result
}

func main() {
	// Two Experiment values cover the matrix: the shared-storage systems
	// crossed with the paper's multi-node cluster sizes, plus a
	// single-node sweep for the systems that run there (GlusterFS and
	// PVFS need two nodes, local disk exactly one — the same
	// combinations the paper skips).
	shared := ec2wfsim.Experiment{
		Base: ec2wfsim.Config{Application: "montage", Storage: "nfs", Workers: 2},
		Axes: []ec2wfsim.Axis{
			ec2wfsim.VaryStorage("s3", "nfs", "gluster-nufa", "gluster-dist", "pvfs"),
			ec2wfsim.VaryWorkers(2, 4, 8),
		},
	}
	opt := ec2wfsim.SweepOptions{
		OnResult: func(u ec2wfsim.SweepUpdate) {
			if u.Err != nil { // Result is nil for failed cells; Sweep returns the error
				fmt.Fprintf(os.Stderr, "[%d/%d] %s n=%d: %v\n", u.Done, u.Total, u.Storage, u.Workers, u.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s n=%d: %.0f s\n",
				u.Done, u.Total, u.Storage, u.Workers, u.Result.MakespanSeconds)
		},
	}
	results, err := ec2wfsim.Sweep(context.Background(), shared, opt)
	if err != nil {
		log.Fatal(err)
	}
	// The single-node column: the local-disk baseline plus the systems
	// that also run on one node (s3, nfs).
	single := ec2wfsim.Experiment{
		Base: ec2wfsim.Config{Application: "montage", Storage: "local", Workers: 1},
		Axes: []ec2wfsim.Axis{ec2wfsim.VaryStorage("local", "s3", "nfs")},
	}
	singles, err := ec2wfsim.Sweep(context.Background(), single, opt)
	if err != nil {
		log.Fatal(err)
	}

	var cells []cell
	for i, storage := range []string{"local", "s3", "nfs"} {
		cells = append(cells, cell{storage, 1, singles[i]})
	}
	i := 0
	for _, storage := range []string{"s3", "nfs", "gluster-nufa", "gluster-dist", "pvfs"} {
		for _, nodes := range []int{2, 4, 8} {
			cells = append(cells, cell{storage, nodes, results[i]})
			i++
		}
	}

	fmt.Println("Montage 8-degree mosaic across data-sharing options")
	fmt.Println()
	fmt.Printf("%-14s %6s %12s %10s %10s\n", "storage", "nodes", "makespan", "$/hour", "$/second")
	fastest, cheapest := 0, 0
	for i, c := range cells {
		fmt.Printf("%-14s %6d %11.0fs %10.2f %10.2f\n",
			c.storage, c.nodes, c.res.MakespanSeconds, c.res.CostPerHour, c.res.CostPerSecond)
		if c.res.MakespanSeconds < cells[fastest].res.MakespanSeconds {
			fastest = i
		}
		if c.res.CostPerHour < cells[cheapest].res.CostPerHour-1e-9 {
			cheapest = i
		}
	}
	fmt.Println()
	fmt.Printf("fastest:  %s on %d nodes (%.0f s)\n",
		cells[fastest].storage, cells[fastest].nodes, cells[fastest].res.MakespanSeconds)
	fmt.Printf("cheapest: %s on %d nodes ($%.2f)\n",
		cells[cheapest].storage, cells[cheapest].nodes, cells[cheapest].res.CostPerHour)

	// The paper's scaling observation: speedup is sub-linear, so adding
	// nodes can only raise cost.
	base := find(cells, "gluster-nufa", 2)
	top := find(cells, "gluster-nufa", 8)
	if base != nil && top != nil {
		fmt.Printf("\nGlusterFS 2->8 nodes: %.1fx speedup on 4x resources (sub-linear: cost only rises, as the paper predicts)\n",
			base.MakespanSeconds/top.MakespanSeconds)
	}
}

func find(cells []cell, storage string, nodes int) *ec2wfsim.Result {
	for _, c := range cells {
		if c.storage == storage && c.nodes == nodes {
			return c.res
		}
	}
	return nil
}
