// Mosaic study: the paper's Figure 2 experiment as an application — run
// the Montage astronomy workflow over every data-sharing option and
// cluster size, and report which deployment builds the 8-degree mosaic
// fastest and which builds it cheapest.
package main

import (
	"fmt"
	"log"

	"ec2wfsim"
)

type cell struct {
	storage string
	nodes   int
	res     *ec2wfsim.Result
}

func main() {
	var cells []cell
	for _, storage := range []string{"local", "s3", "nfs", "gluster-nufa", "gluster-dist", "pvfs"} {
		for _, nodes := range []int{1, 2, 4, 8} {
			res, err := ec2wfsim.Run(ec2wfsim.Config{
				Application: "montage",
				Storage:     storage,
				Workers:     nodes,
			})
			if err != nil {
				// GlusterFS/PVFS need two nodes, local exactly one: skip
				// the combinations the paper also skips.
				continue
			}
			cells = append(cells, cell{storage, nodes, res})
		}
	}
	if len(cells) == 0 {
		log.Fatal("no configuration ran")
	}

	fmt.Println("Montage 8-degree mosaic across data-sharing options")
	fmt.Println()
	fmt.Printf("%-14s %6s %12s %10s %10s\n", "storage", "nodes", "makespan", "$/hour", "$/second")
	fastest, cheapest := 0, 0
	for i, c := range cells {
		fmt.Printf("%-14s %6d %11.0fs %10.2f %10.2f\n",
			c.storage, c.nodes, c.res.MakespanSeconds, c.res.CostPerHour, c.res.CostPerSecond)
		if c.res.MakespanSeconds < cells[fastest].res.MakespanSeconds {
			fastest = i
		}
		if c.res.CostPerHour < cells[cheapest].res.CostPerHour-1e-9 {
			cheapest = i
		}
	}
	fmt.Println()
	fmt.Printf("fastest:  %s on %d nodes (%.0f s)\n",
		cells[fastest].storage, cells[fastest].nodes, cells[fastest].res.MakespanSeconds)
	fmt.Printf("cheapest: %s on %d nodes ($%.2f)\n",
		cells[cheapest].storage, cells[cheapest].nodes, cells[cheapest].res.CostPerHour)

	// The paper's scaling observation: speedup is sub-linear, so adding
	// nodes can only raise cost.
	base := find(cells, "gluster-nufa", 2)
	top := find(cells, "gluster-nufa", 8)
	if base != nil && top != nil {
		fmt.Printf("\nGlusterFS 2->8 nodes: %.1fx speedup on 4x resources (sub-linear: cost only rises, as the paper predicts)\n",
			base.MakespanSeconds/top.MakespanSeconds)
	}
}

func find(cells []cell, storage string, nodes int) *ec2wfsim.Result {
	for _, c := range cells {
		if c.storage == storage && c.nodes == nodes {
			return c.res
		}
	}
	return nil
}
